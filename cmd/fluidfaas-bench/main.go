// Command fluidfaas-bench regenerates the paper's tables and figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fluidfaas/internal/experiments"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/scheduler"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2|table5|fig3|fig4|fig5|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table6|isolation|reconfig|slosweep|batching|chaining|resilience|overload|analytics|planner|swap|gray|all")
	seed := flag.Int64("seed", 42, "random seed")
	duration := flag.Float64("duration", 300, "trace duration (s)")
	loads := flag.String("loads", "", "comma-separated load multipliers for -exp overload (default 1,2,4)")
	csvDir := flag.String("csv", "", "also write plot series (Fig. 3a, Fig. 16 timelines, CDFs) as CSV files into this directory")
	traceOut := flag.String("trace-out", "", "also run an instrumented fluidfaas/medium capture and write its Chrome trace-event JSON here")
	metricsOut := flag.String("metrics-out", "", "also run an instrumented fluidfaas/medium capture and write its Prometheus metrics here")
	jsonOut := flag.String("json-out", "", "write a machine-readable BENCH_<exp>.json (end-to-end matrix + span analytics) into this directory")
	shards := flag.Int("shards", 0, "simulation kernel shards (<=1 sequential engine, >=2 sharded; behaviour-identical, same-seed output is bit-for-bit the same)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.Shards = *shards

	needE2E := map[string]bool{
		"fig9": true, "fig10": true, "fig11": true, "fig12": true,
		"fig13": true, "fig14": true, "fig16": true, "table6": true, "all": true,
	}
	var e2e *experiments.EndToEnd
	if needE2E[*exp] || *jsonOut != "" {
		e2e = experiments.RunEndToEnd(cfg)
	}

	show := func(name string, f func()) {
		if *exp == name || *exp == "all" {
			f()
		}
	}
	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", f.Name())
	}
	show("table2", func() { fmt.Println(experiments.Table2SliceProfiles()) })
	show("table5", func() { fmt.Println(experiments.Table5MinimumSlices()) })
	show("fig3", func() {
		r := experiments.RunMotivation(cfg)
		fmt.Println(experiments.Fig3Table(r))
		writeCSV("fig3a.csv", func(f *os.File) error { return experiments.WriteMotivationCSV(f, r) })
	})
	show("fig4", func() { fmt.Println(experiments.Fig4Table(experiments.RunFragmentation())) })
	show("fig5", func() { fmt.Println(experiments.Fig5Table(experiments.RunKeepAlive(cfg))) })
	show("fig9", func() { fmt.Println(e2e.Fig9SLOHitRates()) })
	show("fig10", func() { fmt.Println(e2e.Fig10Throughput()) })
	show("fig11", func() { fmt.Println(e2e.FigCDF(experiments.Heavy)) })
	show("fig12", func() { fmt.Println(e2e.FigCDF(experiments.Medium)) })
	show("fig13", func() { fmt.Println(e2e.FigCDF(experiments.Light)) })
	show("fig14", func() { fmt.Println(e2e.Fig14Breakdown()) })
	show("fig15", func() { fmt.Println(experiments.Fig15Table(experiments.RunPartitions(cfg))) })
	show("fig16", func() {
		fmt.Println(e2e.Fig16Utilization())
		for _, w := range experiments.Workloads {
			for _, sys := range []string{"esg", "fluidfaas"} {
				w, sys := w, sys
				writeCSV(fmt.Sprintf("fig16_%s_%s.csv", w, sys), func(f *os.File) error {
					return experiments.WriteTimelineCSV(f, e2e.Results[w][sys].UtilGPCs)
				})
			}
		}
	})
	show("table6", func() { fmt.Println(e2e.Table6ResourceCost()) })
	show("isolation", func() { fmt.Println(experiments.IsolationTable(experiments.RunIsolation(cfg))) })
	show("reconfig", func() { fmt.Println(experiments.ReconfigTable(experiments.RunReconfig(cfg))) })
	show("slosweep", func() { fmt.Println(experiments.SLOSweepTable(experiments.RunSLOSweep(cfg, nil))) })
	show("batching", func() { fmt.Println(experiments.BatchingTable(experiments.RunBatching(cfg, nil))) })
	show("chaining", func() { fmt.Println(experiments.ChainingTable(experiments.RunChaining(cfg))) })
	show("resilience", func() { fmt.Println(experiments.ResilienceTable(experiments.RunResilience(cfg))) })
	show("overload", func() {
		var mults []float64
		if *loads != "" {
			for _, s := range strings.Split(*loads, ",") {
				m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil || m <= 0 {
					fmt.Fprintf(os.Stderr, "bad -loads entry %q\n", s)
					os.Exit(2)
				}
				mults = append(mults, m)
			}
		}
		fmt.Println(experiments.OverloadTable(experiments.RunOverload(cfg, mults)))
	})
	var plannerRes *experiments.PlannerResult
	show("planner", func() {
		r := experiments.RunPlanner(cfg)
		plannerRes = &r
		fmt.Println(experiments.PlannerTable(r))
	})
	var swapRes *experiments.SwapResult
	show("swap", func() {
		r := experiments.RunSwap(cfg)
		swapRes = &r
		fmt.Println(experiments.SwapTable(r))
	})
	var grayRes *experiments.GrayResult
	show("gray", func() {
		r := experiments.RunGray(cfg)
		grayRes = &r
		fmt.Println(experiments.GrayTable(r))
	})
	show("analytics", func() {
		ar := experiments.RunAnalytics(cfg)
		fmt.Println(experiments.AnalyticsBlameTable(ar.Report))
		fmt.Println(experiments.AnalyticsStragglerTable(ar.Report))
		fmt.Println(experiments.AnalyticsBurnTable(ar.Report))
		fmt.Println(experiments.AnalyticsDriftTable(ar.Report))
		// A batched capture makes the drift detector fire: batched stage
		// executions run n^gamma longer than the declared profile.
		bcfg := cfg
		bcfg.MaxBatch = 4
		fmt.Println("-- with dynamic batching (MaxBatch=4), where profiles genuinely drift --")
		fmt.Println(experiments.AnalyticsDriftTable(experiments.RunAnalytics(bcfg).Report))
	})

	// Observability capture: one extra instrumented run of the paper's
	// default system and workload, exported for Perfetto / Prometheus.
	// The tables above stay on the zero-cost uninstrumented path.
	if *traceOut != "" || *metricsOut != "" {
		ocfg := cfg
		ocfg.Obs = obs.NewRecorder()
		r := experiments.RunSystem(&scheduler.FluidFaaS{}, experiments.Medium, ocfg)
		ocfg.Obs.SetGauge("fluidfaas_events_dropped", float64(r.EventsDropped))
		ocfg.Obs.SetGauge("fluidfaas_events_published_total", float64(r.EventsTotal))
		writeExport := func(path string, write func(*os.File) error) {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := write(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *traceOut != "" {
			writeExport(*traceOut, func(f *os.File) error { return obs.WriteChromeTrace(f, ocfg.Obs) })
		}
		if *metricsOut != "" {
			writeExport(*metricsOut, func(f *os.File) error { return obs.WritePrometheus(f, ocfg.Obs) })
		}
	}

	// Machine-readable bench document: end-to-end matrix plus the span
	// analytics of an instrumented fluidfaas/medium capture.
	if *jsonOut != "" {
		if err := os.MkdirAll(*jsonOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ar := experiments.RunAnalytics(cfg)
		uc := experiments.RunUtilComparison(cfg)
		path := filepath.Join(*jsonOut, fmt.Sprintf("BENCH_%s.json", *exp))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := experiments.WriteBenchJSON(f, *exp, e2e, ar.Report, plannerRes, swapRes, grayRes, &uc); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments:", flag.Args())
		os.Exit(2)
	}
}
