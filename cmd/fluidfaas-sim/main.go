// Command fluidfaas-sim runs a single platform simulation with a chosen
// policy, workload level and MIG partition scheme, and dumps the
// resulting metrics.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"fluidfaas/internal/experiments"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/obs"
	"fluidfaas/internal/obs/analytics"
	"fluidfaas/internal/obs/decisions"
	"fluidfaas/internal/obs/util"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
)

func main() {
	policy := flag.String("policy", "fluidfaas", "policy: fluidfaas|esg|infless")
	workload := flag.String("workload", "medium", "workload: light|medium|heavy")
	duration := flag.Float64("duration", 300, "trace duration (s)")
	seed := flag.Int64("seed", 42, "random seed")
	partition := flag.String("partition", "P1", "partition scheme: P1|P2|Hybrid")
	events := flag.Int("events", 0, "print the last N platform lifecycle events (0 with -events-kind prints all matching)")
	eventsKind := flag.String("events-kind", "", "only print lifecycle events of these kinds (comma-separated, e.g. fault,retry); collected losslessly off the event bus")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto / chrome://tracing)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-exposition metrics to this file")
	serve := flag.String("serve", "", "after the run, serve live introspection on this address (e.g. 127.0.0.1:8080): /metrics, /analytics, /state, /decisions, /why, /debug/pprof; blocks until killed")
	decisionsOut := flag.String("decisions-out", "", "record decision provenance and write the full export (records, counts, anomaly dumps) to this JSON file")
	utilOut := flag.String("util-out", "", "record the GPU utilization ledger and write its report (per-slice state timelines, waste roll-ups, fragmentation analytics) to this JSON file")
	engineStats := flag.Bool("engine-stats", false, "print the sim engine's self-telemetry (events, rate, heap depth) after the run")
	shards := flag.Int("shards", 0, "simulation kernel shards (<=1 sequential engine, >=2 sharded; behaviour-identical, same-seed output is bit-for-bit the same)")
	flag.Parse()

	var pol scheduler.Policy
	switch *policy {
	case "fluidfaas":
		pol = &scheduler.FluidFaaS{}
	case "esg":
		pol = &scheduler.ESG{}
	case "infless":
		pol = &scheduler.INFlessMIG{}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	var w experiments.Workload
	switch *workload {
	case "light":
		w = experiments.Light
	case "medium":
		w = experiments.Medium
	case "heavy":
		w = experiments.Heavy
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.Shards = *shards
	switch *partition {
	case "P1":
		cfg.GPUConfigs = mig.UniformNode(mig.ConfigP1, 8)
	case "P2":
		cfg.GPUConfigs = mig.UniformNode(mig.ConfigP2, 8)
	case "Hybrid":
		cfg.GPUConfigs = mig.HybridNode()
	default:
		fmt.Fprintf(os.Stderr, "unknown partition %q\n", *partition)
		os.Exit(2)
	}

	// Observability: a recorder only when an export or the introspection
	// server is requested (the nil default keeps the run on the
	// zero-cost path), and a lossless bus subscriber when an event-kind
	// filter is active (the retained ring is bounded; the filter must
	// not miss wrapped events).
	if *traceOut != "" || *metricsOut != "" || *serve != "" {
		cfg.Obs = obs.NewRecorder()
	}
	// Decision provenance: recorded when an export file or the server is
	// requested; otherwise the nil recorder keeps the run bit-identical
	// to an uninstrumented one.
	if *decisionsOut != "" || *serve != "" {
		cfg.Decisions = decisions.NewRecorder(0)
	}
	// Utilization ledger: attached when its export or the server is
	// requested; the nil default keeps the run bit-identical.
	if *utilOut != "" || *serve != "" {
		cfg.Util = util.NewLedger()
	}
	var snap platform.Snapshot
	if *serve != "" {
		cfg.OnPlatform = func(p *platform.Platform) { snap = p.Snapshot() }
	}
	var filtered []platform.Event
	if *eventsKind != "" {
		want := map[platform.EventKind]bool{}
		for _, name := range strings.Split(*eventsKind, ",") {
			k, err := platform.ParseEventKind(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			want[k] = true
		}
		cfg.OnEvent = func(e platform.Event) {
			if want[e.Kind] {
				filtered = append(filtered, e)
			}
		}
	}

	r := experiments.RunSystem(pol, w, cfg)
	fmt.Printf("system         %s\n", r.System)
	fmt.Printf("workload       %s (%s variants)\n", w, w.Variant())
	fmt.Printf("partition      %s\n", *partition)
	fmt.Printf("requests       %d (completed %d)\n", r.Total, r.Completed)
	fmt.Printf("throughput     %.1f req/s\n", r.Throughput)
	fmt.Printf("SLO hit rate   %.1f%%\n", r.SLOHit*100)
	for f := 0; f < len(r.SLOHitByApp); f++ {
		fmt.Printf("  app %d        %.1f%%\n", f, r.SLOHitByApp[f]*100)
	}
	fmt.Printf("latency p50    %.3f s\n", r.LatencyP50)
	fmt.Printf("latency p95    %.3f s\n", r.LatencyP95)
	fmt.Printf("latency p99    %.3f s\n", r.LatencyP99)
	fmt.Printf("breakdown      %s\n", r.Breakdown)
	fmt.Printf("GPU time       %.1f s\n", r.GPUTime)
	fmt.Printf("MIG time       %.1f s\n", r.MIGTime)
	fmt.Printf("mean util      %.1f%% of GPCs\n", r.UtilGPCs.Mean()*100)
	fmt.Printf("instances      %d launched, %d evictions, %d migrations\n",
		r.Launched, r.Evictions, r.Migrations)
	if *engineStats {
		kernel := "sequential"
		if r.Engine.Shards > 0 {
			kernel = fmt.Sprintf("%d shards", r.Engine.Shards)
		}
		fmt.Printf("engine         %d events (%d scheduled, %d cancelled), peak heap %d, %.0f events/s, %s\n",
			r.Engine.Executed, r.Engine.Scheduled, r.Engine.Cancellations,
			r.Engine.PeakHeapDepth, r.Engine.EventsPerSec, kernel)
	}
	if *events > 0 || *eventsKind != "" {
		evs := r.Events
		label := "recent lifecycle events"
		if *eventsKind != "" {
			evs = filtered
			label = fmt.Sprintf("lifecycle events (%s)", *eventsKind)
		}
		if *events > 0 && len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		fmt.Printf("\n%s:\n", label)
		for _, e := range evs {
			fmt.Println(" ", e)
		}
	}

	writeExport := func(path string, write func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if rec := cfg.Obs; rec != nil {
		rec.SetGauge("fluidfaas_events_dropped", float64(r.EventsDropped))
		rec.SetGauge("fluidfaas_events_published_total", float64(r.EventsTotal))
		if *traceOut != "" {
			writeExport(*traceOut, func(f *os.File) error { return obs.WriteChromeTrace(f, rec) })
		}
		if *metricsOut != "" {
			writeExport(*metricsOut, func(f *os.File) error { return obs.WritePrometheus(f, rec) })
		}
	}

	var utilRep *util.Report
	if cfg.Util != nil {
		if err := cfg.Util.Check(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		utilRep = cfg.Util.Report()
		if *utilOut != "" {
			writeExport(*utilOut, func(f *os.File) error { return utilRep.WriteJSON(f) })
		}
	}

	// An SLO burn-rate page is an anomaly: freeze the decision ring so
	// the export carries a full dump of what the scheduler was deciding
	// when the budget burned. Deterministic — the page count and freeze
	// time derive only from the simulated run.
	var report *analytics.Report
	if cfg.Obs != nil {
		report = analytics.Analyze(analytics.Config{}, cfg.Obs)
	}
	if dr := cfg.Decisions; dr != nil {
		if report != nil {
			pages := 0
			for _, b := range report.Burn {
				pages += b.Pages
			}
			if pages > 0 {
				dr.Freeze(cfg.Duration, fmt.Sprintf("slo-burn: %d pages", pages))
			}
		}
		if *decisionsOut != "" {
			writeExport(*decisionsOut, func(f *os.File) error { return dr.WriteJSON(f) })
		}
	}

	// Live introspection: analyse the finished run and serve it. The
	// recorder is no longer written to, so serving is race-free; the
	// listener comes up before the address is announced so scripts can
	// curl as soon as they see the line.
	if *serve != "" {
		h := analytics.Handler(analytics.ServerOptions{
			Recorder:  cfg.Obs,
			Report:    report,
			State:     snap,
			Decisions: cfg.Decisions,
			Util:      utilRep,
		})
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving introspection on http://%s\n", ln.Addr())
		if err := http.Serve(ln, h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
