// Command fluidfaas-trace generates Azure-like workload traces as CSV
// and prints statistics of existing trace files.
package main

import (
	"flag"
	"fmt"
	"os"

	"fluidfaas/internal/experiments"
	"fluidfaas/internal/trace"
)

func main() {
	gen := flag.String("generate", "", "generate a trace for a workload level: light|medium|heavy")
	out := flag.String("out", "", "output CSV path (default stdout)")
	inspect := flag.String("inspect", "", "print statistics of a trace CSV")
	duration := flag.Float64("duration", 300, "trace duration (s)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	switch {
	case *gen != "":
		var w experiments.Workload
		switch *gen {
		case "light":
			w = experiments.Light
		case "medium":
			w = experiments.Medium
		case "heavy":
			w = experiments.Heavy
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *gen)
			os.Exit(2)
		}
		cfg := experiments.DefaultConfig()
		cfg.Seed = *seed
		cfg.Duration = *duration
		tr := experiments.TraceFor(w, cfg)
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		if err := tr.WriteCSV(dst); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%d requests over %.0f s (mean %.1f req/s, peak %.1f req/s)\n",
			len(tr.Requests), tr.Duration, tr.MeanRate(), tr.PeakRate(10))

	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("requests   %d\n", len(tr.Requests))
		fmt.Printf("duration   %.1f s\n", tr.Duration)
		fmt.Printf("functions  %d\n", tr.NumFuncs)
		fmt.Printf("mean rate  %.2f req/s\n", tr.MeanRate())
		fmt.Printf("peak rate  %.2f req/s (10 s buckets)\n", tr.PeakRate(10))
		for fn, n := range tr.CountByFunc() {
			fmt.Printf("  func %d   %d requests\n", fn, n)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
