// Command fluidfaas-dag inspects FluidFaaS functions: it prints an
// application's FFS DAG (optionally as Graphviz dot), its CV-ranked
// pipeline partitions, and the deployment the invoker would construct
// for a given set of free slices.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

func main() {
	appName := flag.String("app", "image-classification", "application: image-classification|depth-recognition|background-elimination|expanded-image-classification")
	variantName := flag.String("variant", "medium", "variant: small|medium|large")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	freeStr := flag.String("free", "", "comma-separated free slices to construct against, e.g. 2g.20gb,1g.10gb")
	topN := flag.Int("top", 5, "how many ranked partitions to print")
	flag.Parse()

	var app dnn.App
	found := false
	for _, a := range dnn.Apps() {
		if a.Name == *appName {
			app = a
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	variant, err := dnn.ParseVariant(*variantName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if app.Excluded(variant) {
		fmt.Fprintf(os.Stderr, "%s/%s is excluded from the study (Table 5 NULL)\n", app.Name, variant)
		os.Exit(2)
	}

	d := app.BuildDAG(variant)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *dot {
		fmt.Print(d.DOT(app.Name, parts[0].Stages))
		return
	}

	fmt.Printf("%s / %s\n", app.Name, variant)
	fmt.Printf("components: %d, total memory %.1f GB\n", d.Len(), d.TotalMemGB())
	bs, bok := app.MinSliceBaseline(variant)
	fs, fok := app.MinSliceFluid(variant)
	fmt.Printf("min slice: baseline %s, fluidfaas %s\n\n", renderSlice(bs, bok), renderSlice(fs, fok))

	fmt.Printf("top %d CV-ranked partitions:\n", *topN)
	for i, p := range parts {
		if i >= *topN {
			break
		}
		var stageStr []string
		for _, st := range p.Stages {
			var names []string
			for _, n := range st.Nodes {
				names = append(names, d.Node(n).Name)
			}
			stageStr = append(stageStr, "["+strings.Join(names, "+")+"]")
		}
		fmt.Printf("  %2d. CV %.3f  %s\n", i+1, p.CV, strings.Join(stageStr, " -> "))
	}

	if *freeStr != "" {
		var free []mig.SliceType
		for _, s := range strings.Split(*freeStr, ",") {
			t, err := mig.ParseSliceType(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			free = append(free, t)
		}
		slo, _ := app.SLOLatency(variant, 1.5)
		plan, idx, err := pipeline.Construct(d, parts, free, slo)
		if err != nil {
			fmt.Printf("\nconstruction against %v: %v\n", free, err)
			return
		}
		fmt.Printf("\nconstruction against %v:\n  plan %v (slices %v)\n", free, plan, idx)
		fmt.Printf("  latency %.0f ms (SLO %.0f ms), throughput %.2f req/s\n",
			plan.Latency*1000, slo*1000, plan.Throughput())
	}
}

func renderSlice(t mig.SliceType, ok bool) string {
	if !ok {
		return "NULL"
	}
	return ">=" + t.String()
}
