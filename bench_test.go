// Package fluidfaas holds the benchmark harness: one testing.B bench per
// table and figure of the paper's evaluation (DESIGN.md §4), plus the
// ablation benches for the design choices DESIGN.md §6 calls out. Each
// bench runs the corresponding experiment and reports the paper's
// headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. Benches use a shortened trace (150 s) to
// keep the full sweep under a few minutes; cmd/fluidfaas-bench runs the
// full-length versions.
package fluidfaas

import (
	"fmt"
	"testing"

	"fluidfaas/internal/dag"
	"fluidfaas/internal/dnn"
	"fluidfaas/internal/experiments"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/sim"
)

func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Duration = 150
	cfg.Drain = 30
	return cfg
}

// BenchmarkFig3Motivation measures ESG's resource over-demand (paper:
// 167% at the 83rd second).
func BenchmarkFig3Motivation(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunMotivation(benchCfg())
		over = r.PeakOverdemand
	}
	b.ReportMetric(over*100, "peak_overdemand_%")
}

// BenchmarkFig4Fragmentation exercises the fragmentation walk-through.
func BenchmarkFig4Fragmentation(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.RunFragmentation())
	}
	b.ReportMetric(float64(n), "cases")
}

// BenchmarkFig5KeepAlive measures the active share of occupied MIGs
// under exclusive keep-alive (paper: 16.1% average).
func BenchmarkFig5KeepAlive(b *testing.B) {
	var active, below float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Duration = 600
		r := experiments.RunKeepAlive(cfg)
		active = r.AvgActive
		below = r.FracBelow35
	}
	b.ReportMetric(active*100, "avg_active_%")
	b.ReportMetric(below*100, "time_below_35%_%")
}

// benchOne runs a single (policy, workload) experiment per iteration.
func benchOne(b *testing.B, pol scheduler.Policy, w experiments.Workload) experiments.SystemResult {
	b.Helper()
	var r experiments.SystemResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunSystem(pol, w, benchCfg())
	}
	return r
}

// BenchmarkFig9SLO reports the SLO hit rates of Fig. 9 (FluidFaaS vs
// ESG, medium workload — the paper's headline gap).
func BenchmarkFig9SLO(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Medium)
	esg := experiments.RunSystem(&scheduler.ESG{}, experiments.Medium, benchCfg())
	b.ReportMetric(ff.SLOHit*100, "fluid_slo_%")
	b.ReportMetric(esg.SLOHit*100, "esg_slo_%")
}

// BenchmarkFig10Throughput reports the heavy-workload throughput gain
// (paper: +75%).
func BenchmarkFig10Throughput(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Heavy)
	esg := experiments.RunSystem(&scheduler.ESG{}, experiments.Heavy, benchCfg())
	b.ReportMetric(ff.Throughput, "fluid_rps")
	b.ReportMetric(esg.Throughput, "esg_rps")
	if esg.Throughput > 0 {
		b.ReportMetric(ff.Throughput/esg.Throughput, "gain_x")
	}
}

// BenchmarkFig11CDFHeavy reports P95 latency in the heavy workload
// (paper: FluidFaaS cuts P95 tail latency by >=50%).
func BenchmarkFig11CDFHeavy(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Heavy)
	b.ReportMetric(ff.LatencyP95, "fluid_p95_s")
}

// BenchmarkFig12CDFMedium reports P95 latency in the medium workload.
func BenchmarkFig12CDFMedium(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Medium)
	b.ReportMetric(ff.LatencyP95, "fluid_p95_s")
}

// BenchmarkFig13CDFLight reports P95 latency in the light workload.
func BenchmarkFig13CDFLight(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Light)
	b.ReportMetric(ff.LatencyP95, "fluid_p95_s")
}

// BenchmarkFig14Breakdown reports the queue-vs-transfer trade (paper:
// FluidFaaS adds 10-40 ms transfer but removes most queueing).
func BenchmarkFig14Breakdown(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Medium)
	esg := experiments.RunSystem(&scheduler.ESG{}, experiments.Medium, benchCfg())
	b.ReportMetric(ff.Breakdown.Transfer*1000, "fluid_transfer_ms")
	b.ReportMetric(ff.Breakdown.Queue*1000, "fluid_queue_ms")
	b.ReportMetric(esg.Breakdown.Queue*1000, "esg_queue_ms")
}

// BenchmarkTable6ResourceCost reports normalised GPU time (paper: ESG
// and INFless burn up to 17% more GPU time).
func BenchmarkTable6ResourceCost(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Heavy)
	esg := experiments.RunSystem(&scheduler.ESG{}, experiments.Heavy, benchCfg())
	if ff.GPUTime > 0 {
		b.ReportMetric(esg.GPUTime/ff.GPUTime, "esg_gputime_norm")
		b.ReportMetric(esg.MIGTime/ff.MIGTime, "esg_migtime_norm")
	}
}

// BenchmarkFig15Partitions reports the FluidFaaS-over-ESG gain per
// partition scheme (paper: 1.70x Hybrid, 1.75x P1, 1.78x P2).
func BenchmarkFig15Partitions(b *testing.B) {
	var rs []experiments.PartitionResult
	for i := 0; i < b.N; i++ {
		rs = experiments.RunPartitions(benchCfg())
	}
	for _, r := range rs {
		b.ReportMetric(r.Gain, r.Scheme+"_gain_x")
	}
}

// BenchmarkFig16Utilization reports mean GPU utilisation in the heavy
// workload (paper: FluidFaaS +75% during bursts).
func BenchmarkFig16Utilization(b *testing.B) {
	ff := benchOne(b, &scheduler.FluidFaaS{}, experiments.Heavy)
	esg := experiments.RunSystem(&scheduler.ESG{}, experiments.Heavy, benchCfg())
	b.ReportMetric(ff.UtilGPCs.Mean()*100, "fluid_util_%")
	b.ReportMetric(esg.UtilGPCs.Mean()*100, "esg_util_%")
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationCV compares the CV-ranked partition choice against a
// naive maximal split for the heavy image-classification pipeline: the
// balanced choice should sustain at least the naive throughput.
func BenchmarkAblationCV(b *testing.B) {
	a := dnn.Get(dnn.ImageClassification)
	d := a.BuildDAG(dnn.Medium)
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		b.Fatal(err)
	}
	// One 2g and one 1g free: two distinct 2-stage splits fit, and only
	// the CV ranking picks the balanced one.
	free := []mig.SliceType{mig.Slice2g, mig.Slice1g}
	// Naive: walk the partitions worst-balanced first.
	reversed := make([]dag.Partition, len(parts))
	for i, p := range parts {
		reversed[len(parts)-1-i] = p
	}
	var ranked, naive pipeline.Plan
	for i := 0; i < b.N; i++ {
		var errC error
		ranked, _, errC = pipeline.Construct(d, parts, free, 0)
		if errC != nil {
			b.Fatal(errC)
		}
		naive, _, errC = pipeline.Construct(d, reversed, free, 0)
		if errC != nil {
			b.Fatal(errC)
		}
	}
	// The CV ranking optimises balance, which shows up as lower
	// unloaded latency for the chosen deployment.
	b.ReportMetric(ranked.Latency*1000, "ranked_latency_ms")
	b.ReportMetric(naive.Latency*1000, "naive_latency_ms")
	b.ReportMetric(ranked.CV, "ranked_cv")
	b.ReportMetric(naive.CV, "naive_cv")
}

// BenchmarkAblationEviction isolates hotness-aware eviction-based time
// sharing: FluidFaaS with and without it on the light workload, where
// time sharing carries the sub-threshold functions.
func BenchmarkAblationEviction(b *testing.B) {
	full := benchOne(b, &scheduler.FluidFaaS{}, experiments.Light)
	off := experiments.RunSystem(&scheduler.FluidFaaS{DisableTimeSharing: true}, experiments.Light, benchCfg())
	b.ReportMetric(full.SLOHit*100, "with_ts_slo_%")
	b.ReportMetric(off.SLOHit*100, "without_ts_slo_%")
	b.ReportMetric(float64(full.Evictions), "evictions")
	// Time sharing's payoff is occupancy, not SLO: idle functions stop
	// monopolising slices.
	occFull := full.OccupiedGPCs
	occOff := off.OccupiedGPCs
	b.ReportMetric(occFull.Mean()*100, "with_ts_occupied_%")
	b.ReportMetric(occOff.Mean()*100, "without_ts_occupied_%")
}

// BenchmarkAblationMigration isolates pipeline migration on the medium
// workload.
func BenchmarkAblationMigration(b *testing.B) {
	full := benchOne(b, &scheduler.FluidFaaS{}, experiments.Medium)
	off := experiments.RunSystem(&scheduler.FluidFaaS{DisableMigration: true}, experiments.Medium, benchCfg())
	b.ReportMetric(full.SLOHit*100, "with_migration_slo_%")
	b.ReportMetric(off.SLOHit*100, "without_migration_slo_%")
	b.ReportMetric(float64(full.Migrations), "migrations")
}

// BenchmarkAblationTransfer sweeps the stage-boundary transfer cost
// (x0.5 / x1 / x4): at the paper's costs the overhead is marginal
// against the queueing pipelines save (§7.3); at x4 the SLO filter
// starts rejecting pipelines and FluidFaaS degenerates toward the
// baselines.
func BenchmarkAblationTransfer(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 4} {
		cfg := benchCfg()
		cfg.TransferScale = scale
		var r experiments.SystemResult
		for i := 0; i < b.N; i++ {
			r = experiments.RunSystem(&scheduler.FluidFaaS{}, experiments.Heavy, cfg)
		}
		switch scale {
		case 0.5:
			b.ReportMetric(r.SLOHit*100, "x0.5_slo_%")
		case 1:
			b.ReportMetric(r.SLOHit*100, "x1_slo_%")
		default:
			b.ReportMetric(r.SLOHit*100, "x4_slo_%")
		}
	}
}

// --- Extension studies ---

// BenchmarkExtensionIsolation compares strong (MIG) vs weak (MPS)
// isolation — Table 1's qualitative columns made quantitative.
func BenchmarkExtensionIsolation(b *testing.B) {
	var r experiments.IsolationResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunIsolation(benchCfg())
	}
	b.ReportMetric(r.MPSMeanSlowdown, "mps_slowdown_x")
	b.ReportMetric(r.MPSExposureSeconds, "mps_exposure_pair_s")
	b.ReportMetric(r.MIGSLOHit*100, "mig_slo_%")
	b.ReportMetric(r.MPSSLOHit*100, "mps_slo_%")
}

// BenchmarkExtensionReconfig quantifies §2.2: repartitioning loses the
// requests that arrive during its multi-minute offline window.
func BenchmarkExtensionReconfig(b *testing.B) {
	var r experiments.ReconfigResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunReconfig(benchCfg())
	}
	b.ReportMetric(float64(r.FluidServed), "fluid_served")
	b.ReportMetric(float64(r.ReconfigServed), "reconfig_served")
	b.ReportMetric(r.OfflineSeconds, "offline_s")
}

// BenchmarkExtensionSLOSweep sweeps the SLO scale on the medium
// workload.
func BenchmarkExtensionSLOSweep(b *testing.B) {
	var pts []experiments.SLOSweepPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.RunSLOSweep(benchCfg(), []float64{1.2, 1.5, 2.0})
	}
	for _, p := range pts {
		b.ReportMetric((p.FFSLOHit-p.ESGSLOHit)*100, fmt.Sprintf("delta_at_%.1fx_pp", p.Scale))
	}
}

// --- Microbenches of the core machinery ---

// BenchmarkSimEngine measures raw event throughput of the DES kernel.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				e.After(1, tick)
			}
		}
		e.After(1, tick)
		e.Run()
	}
}

// BenchmarkPartitionEnumeration measures the offline CV-ranking step.
func BenchmarkPartitionEnumeration(b *testing.B) {
	a := dnn.Get(dnn.ExpandedClassification)
	d := a.BuildDAG(dnn.Medium)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.EnumeratePartitions(mig.Slice7g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkESGPlaceBatch measures one A*-with-dual-blade-pruning
// scheduling round at realistic batch and cluster sizes.
func BenchmarkESGPlaceBatch(b *testing.B) {
	var reqs []scheduler.Req
	for i, id := range []dnn.AppID{dnn.ImageClassification, dnn.DepthRecognition,
		dnn.BackgroundElimination, dnn.ExpandedClassification} {
		a := dnn.Get(id)
		d := a.BuildDAG(dnn.Medium)
		parts, _ := d.EnumeratePartitions(mig.Slice7g)
		slo, _ := a.SLOLatency(dnn.Medium, 1.5)
		reqs = append(reqs, scheduler.Req{Func: i, DAG: d, Parts: parts, SLO: slo})
		reqs = append(reqs, scheduler.Req{Func: i, DAG: d, Parts: parts, SLO: slo})
	}
	var nodes []scheduler.NodeFree
	for n := 0; n < 2; n++ {
		var free []mig.SliceType
		for g := 0; g < 8; g++ {
			free = append(free, mig.Slice4g, mig.Slice2g, mig.Slice1g)
		}
		nodes = append(nodes, scheduler.NodeFree{Node: n, Free: free})
	}
	pol := &scheduler.ESG{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pol.PlaceBatch(reqs, nodes); len(got) == 0 {
			b.Fatal("nothing placed")
		}
	}
}

// BenchmarkFluidFaaSConstruct measures the invoker's pipeline
// construction step.
func BenchmarkFluidFaaSConstruct(b *testing.B) {
	a := dnn.Get(dnn.ExpandedClassification)
	d := a.BuildDAG(dnn.Medium)
	parts, _ := d.EnumeratePartitions(mig.Slice7g)
	slo, _ := a.SLOLatency(dnn.Medium, 1.5)
	free := []mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g, mig.Slice1g, mig.Slice1g}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pipeline.Construct(d, parts, free, slo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerConstruct compares the invoker's construction step
// with and without the memoized planner on a steady free-slice view —
// the cached path is a signature lookup plus index binding.
func BenchmarkPlannerConstruct(b *testing.B) {
	a := dnn.Get(dnn.ExpandedClassification)
	d := a.BuildDAG(dnn.Medium)
	parts, _ := d.EnumeratePartitions(mig.Slice7g)
	slo, _ := a.SLOLatency(dnn.Medium, 1.5)
	free := []mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g, mig.Slice1g, mig.Slice1g}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := pipeline.Construct(d, parts, free, slo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		pl := pipeline.NewPlanner(d, parts)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := pl.Construct(free, slo); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pl.Stats().HitRate()*100, "hit_rate_%")
	})
}

// BenchmarkFluidFaaSPlaceBatch measures a FluidFaaS scheduling round at
// realistic batch and cluster sizes, with and without planner-backed
// requests. The placements are identical; only the work per probe
// changes.
func BenchmarkFluidFaaSPlaceBatch(b *testing.B) {
	mkReqs := func() []scheduler.Req {
		var reqs []scheduler.Req
		for i, id := range []dnn.AppID{dnn.ImageClassification, dnn.DepthRecognition,
			dnn.BackgroundElimination, dnn.ExpandedClassification} {
			a := dnn.Get(id)
			d := a.BuildDAG(dnn.Medium)
			parts, _ := d.EnumeratePartitions(mig.Slice7g)
			slo, _ := a.SLOLatency(dnn.Medium, 1.5)
			req := scheduler.Req{Func: i, DAG: d, Parts: parts, SLO: slo}
			reqs = append(reqs, req, req)
		}
		return reqs
	}
	var nodes []scheduler.NodeFree
	for n := 0; n < 2; n++ {
		var free []mig.SliceType
		for g := 0; g < 8; g++ {
			free = append(free, mig.Slice4g, mig.Slice2g, mig.Slice1g)
		}
		nodes = append(nodes, scheduler.NodeFree{Node: n, Free: free})
	}
	pol := &scheduler.FluidFaaS{}
	b.Run("uncached", func(b *testing.B) {
		reqs := mkReqs()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := pol.PlaceBatch(reqs, nodes); len(got) == 0 {
				b.Fatal("nothing placed")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		reqs := mkReqs()
		for i := range reqs {
			reqs[i].Planner = pipeline.NewPlanner(reqs[i].DAG, reqs[i].Parts)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := pol.PlaceBatch(reqs, nodes); len(got) == 0 {
				b.Fatal("nothing placed")
			}
		}
		var st pipeline.PlannerStats
		for _, r := range reqs {
			st.Add(r.Planner.Stats())
		}
		b.ReportMetric(st.HitRate()*100, "hit_rate_%")
	})
}

// BenchmarkPlannerSystem is the planner fast-path study end to end: a
// medium FluidFaaS run with the plan cache on vs off, reporting the
// cache-on/off identity verdict, hit rate, walk reduction, and
// simulator events per wall-clock second.
func BenchmarkPlannerSystem(b *testing.B) {
	var r experiments.PlannerResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunPlanner(benchCfg())
	}
	if !r.Identical {
		b.Fatal("cache-on and cache-off runs diverged")
	}
	b.ReportMetric(r.HitRate*100, "hit_rate_%")
	b.ReportMetric(r.WalkReduction, "walk_reduction_x")
	b.ReportMetric(r.CachedEventsPerSec, "cached_events_per_s")
	b.ReportMetric(r.UncachedEventsPerSec, "uncached_events_per_s")
	b.ReportMetric(r.Speedup, "speedup_x")
}

// BenchmarkPlatformMediumFluidFaaS measures a whole platform run: wall
// time per simulated 150 s of cluster operation.
func BenchmarkPlatformMediumFluidFaaS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunSystem(&scheduler.FluidFaaS{}, experiments.Medium, benchCfg())
	}
}

// BenchmarkExtensionBatching sweeps dynamic batching in its target
// regime (over-saturated, loose SLO): throughput rises with batch size.
func BenchmarkExtensionBatching(b *testing.B) {
	var pts []experiments.BatchingPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.RunBatching(benchCfg(), []int{1, 4, 8})
	}
	for _, p := range pts {
		b.ReportMetric(p.Throughput, fmt.Sprintf("batch%d_rps", p.MaxBatch))
	}
}

// BenchmarkAblationRouting isolates the heterogeneity-aware routing of
// §5.3: latency-ascending (the paper) vs slowest-first vs round-robin
// on the medium workload, where monolithic and pipelined instances of
// one function coexist with very different latencies.
func BenchmarkAblationRouting(b *testing.B) {
	run := func(order platform.RoutingOrder) experiments.SystemResult {
		cfg := benchCfg()
		cfg.Routing = order
		return experiments.RunSystem(&scheduler.FluidFaaS{}, experiments.Medium, cfg)
	}
	var asc experiments.SystemResult
	for i := 0; i < b.N; i++ {
		asc = run(platform.RouteLatencyAsc)
	}
	desc := run(platform.RouteLatencyDesc)
	rr := run(platform.RouteRoundRobin)
	b.ReportMetric(asc.SLOHit*100, "latency_asc_slo_%")
	b.ReportMetric(desc.SLOHit*100, "latency_desc_slo_%")
	b.ReportMetric(rr.SLOHit*100, "round_robin_slo_%")
}

// BenchmarkExtensionChaining quantifies §5's premise: whole-workflow
// functions vs function-per-model chaining.
func BenchmarkExtensionChaining(b *testing.B) {
	var r experiments.ChainingResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunChaining(benchCfg())
	}
	b.ReportMetric(r.WholeSLOHit*100, "whole_slo_%")
	b.ReportMetric(r.ChainSLOHit*100, "chained_slo_%")
	b.ReportMetric(r.ChainHopOverhead*1000, "hop_overhead_ms")
}

// BenchmarkAblationDualBlade measures ESG's A* search effort with and
// without its two pruning blades (the baseline's own headline
// optimisation) on a contended scheduling round.
func BenchmarkAblationDualBlade(b *testing.B) {
	var reqs []scheduler.Req
	for i := 0; i < 6; i++ {
		app := dnn.Get(dnn.AppIDs[i%4])
		v := dnn.Medium
		if app.Excluded(v) {
			v = dnn.Small
		}
		d := app.BuildDAG(v)
		parts, _ := d.EnumeratePartitions(mig.Slice7g)
		slo, _ := app.SLOLatency(v, 1.5)
		reqs = append(reqs, scheduler.Req{Func: i, DAG: d, Parts: parts, SLO: slo})
	}
	var free []mig.SliceType
	for g := 0; g < 4; g++ {
		free = append(free, mig.Slice4g, mig.Slice2g, mig.Slice1g)
	}
	nodes := []scheduler.NodeFree{{Node: 0, Free: free}}
	full := &scheduler.ESG{}
	for i := 0; i < b.N; i++ {
		full.PlaceBatch(reqs, nodes)
	}
	noPrune := &scheduler.ESG{DisableDominance: true, DisableBound: true}
	noPrune.PlaceBatch(reqs, nodes)
	b.ReportMetric(float64(full.Explored), "pruned_states")
	b.ReportMetric(float64(noPrune.Explored), "unpruned_states")
}
