module fluidfaas

go 1.24
