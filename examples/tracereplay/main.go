// Tracereplay: replay an invocation trace CSV (arrival_s,func) through
// the full platform under a chosen policy and print an SLO report. With
// no -trace argument it generates and replays a medium Azure-like trace,
// so the example is runnable out of the box:
//
//	go run ./examples/tracereplay
//	go run ./cmd/fluidfaas-trace -generate medium -out my.csv
//	go run ./examples/tracereplay -trace my.csv -policy esg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fluidfaas/internal/cluster"
	"fluidfaas/internal/experiments"
	"fluidfaas/internal/platform"
	"fluidfaas/internal/scheduler"
	"fluidfaas/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace CSV (default: generated medium workload)")
	azure := flag.Bool("azure", false, "trace is in the Azure Functions dataset format (hash,per-minute counts)")
	minutes := flag.Int("minutes", 0, "with -azure: replay only the first N minutes (0 = all)")
	policy := flag.String("policy", "fluidfaas", "policy: fluidfaas|esg|infless")
	flag.Parse()

	var pol scheduler.Policy
	switch *policy {
	case "fluidfaas":
		pol = &scheduler.FluidFaaS{}
	case "esg":
		pol = &scheduler.ESG{}
	case "infless":
		pol = &scheduler.INFlessMIG{}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := experiments.DefaultConfig()
	cfg.Duration = 180

	var tr *trace.Trace
	if *tracePath == "" {
		tr = experiments.TraceFor(experiments.Medium, cfg)
		fmt.Println("no -trace given; generated a medium Azure-like trace")
	} else {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		if *azure {
			tr, rerr = trace.ReadAzureCSV(f, cfg.Seed, *minutes)
		} else {
			tr, rerr = trace.ReadCSV(f)
		}
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	}
	fmt.Printf("trace: %d requests, %.0f s, %.1f req/s mean, %.1f req/s peak\n\n",
		len(tr.Requests), tr.Duration, tr.MeanRate(), tr.PeakRate(10))

	specs := experiments.SpecsFor(experiments.Medium, cfg.SLOScale)
	if tr.NumFuncs > len(specs) {
		log.Fatalf("trace references %d functions, only %d registered", tr.NumFuncs, len(specs))
	}
	cl := cluster.New(cluster.Spec{Nodes: cfg.Nodes, GPUConfigs: cfg.GPUConfigs, CPUMemGB: 1440})
	p := platform.New(cl, specs, platform.Options{Policy: pol, Seed: cfg.Seed})
	p.Run(tr, 40)

	col := p.Collector()
	fmt.Printf("policy           %s\n", pol.Name())
	fmt.Printf("completed        %d / %d\n", col.Completed(), col.Len())
	fmt.Printf("throughput       %.1f req/s\n", col.Throughput(tr.Duration))
	fmt.Printf("SLO hit rate     %.1f%%\n", col.SLOHitRate()*100)
	for fnID := 0; fnID < len(specs); fnID++ {
		fmt.Printf("  %-30s %.1f%%\n", specs[fnID].Name, col.SLOHitRateByFunc()[fnID]*100)
	}
	fmt.Printf("breakdown        %s\n", col.MeanBreakdown())
	fmt.Printf("instances        %d launched, %d evictions, %d migrations\n",
		p.Launched(), p.Evictions(), p.Migrations())
	fmt.Printf("GPU / MIG time   %.0f s / %.0f s\n",
		cl.GPUTime(tr.Duration+40), cl.MIGTime(tr.Duration+40))
}
