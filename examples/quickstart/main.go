// Quickstart: write a FluidFaaS function (Fig. 7 style), profile it in
// BUILDDAG mode, let the invoker construct a pipeline over whatever MIG
// slices happen to be free, and serve requests through the RUN-mode
// stage processes.
package main

import (
	"fmt"
	"log"

	"fluidfaas/internal/dnn"
	"fluidfaas/internal/ffaas"
	"fluidfaas/internal/keepalive"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// imageClassification is the developer-written FluidFaaS function: the
// paper's App 0 (super-resolution -> segmentation -> classification) at
// the medium variant. Each DNN model is a Module; DefDAG registers the
// models and the dataflow, exactly like Fig. 7's defDAG.
type imageClassification struct{}

func (imageClassification) Name() string { return "image-classification" }

func (imageClassification) DefDAG(b *ffaas.Builder) {
	mod := func(m dnn.ModelID) *ffaas.StaticModule {
		return &ffaas.StaticModule{
			ModuleName: m.String(),
			Mem:        m.MemGB(dnn.Medium),
			Out:        m.OutMB(dnn.Medium),
			Exec:       m.ExecProfile(dnn.Medium),
		}
	}
	x1 := b.Reg(mod(dnn.SuperResolution), ffaas.Input)
	x2 := b.Reg(mod(dnn.Segmentation), x1)
	b.Reg(mod(dnn.Classification), x2)
}

func main() {
	fn := imageClassification{}

	// BUILDDAG mode: construct the FFS DAG and profile every component.
	d, profiles, err := ffaas.Profile(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("component profiles (BUILDDAG mode):")
	for _, p := range profiles {
		fmt.Printf("  %-18s %4.1f GB  1g:%.0fms 2g:%.0fms 4g:%.0fms\n",
			p.Name, p.MemGB,
			p.Exec[mig.Slice1g]*1000, p.Exec[mig.Slice2g]*1000, p.Exec[mig.Slice4g]*1000)
	}

	// Offline step: enumerate partitions and rank by CV (Eq. 1).
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d candidate pipeline partitions, best CV %.3f\n", len(parts), parts[0].CV)

	// The invoker's launch step: only three fragmented 1g.10gb slices
	// are free — too small for the 18 GB function monolithically, but a
	// pipeline fits.
	free := []mig.SliceType{mig.Slice1g, mig.Slice1g, mig.Slice1g}
	slo := 0.9 // seconds
	plan, idx, err := pipeline.Construct(d, parts, free, slo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconstructed pipeline %v\n", plan)
	fmt.Printf("  unloaded latency %.0f ms, sustainable throughput %.2f req/s\n",
		plan.Latency*1000, plan.Throughput())

	// The invoker writes the assignment to the configuration layer and
	// launches the instance (RUN mode).
	ids := make([]string, len(idx))
	for i, ai := range idx {
		ids[i] = fmt.Sprintf("gpu%d/%s", i, free[ai])
	}
	cfg, err := ffaas.FromPlan(plan, ids)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := ffaas.Launch(fn, cfg, ffaas.LaunchOptions{
		Preloaded: false,
		LoadTime:  keepalive.WarmLoadTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	// Serve a burst of requests; stages overlap, so completion spacing
	// approaches the bottleneck stage time, not the full latency.
	fmt.Println("\nserving a burst of 8 requests:")
	results := make([]<-chan ffaas.Result, 8)
	for i := range results {
		results[i] = inst.Invoke(0)
	}
	for i, ch := range results {
		r := <-ch
		fmt.Printf("  req %d: latency %.0f ms (queue %.0f, exec %.0f, transfer %.0f, load %.0f)\n",
			i, r.Latency*1000, r.QueueTime*1000, r.ExecTime*1000, r.TransferTime*1000, r.LoadTime*1000)
	}
}
