// Imagepipeline: the paper's evaluation scenario in miniature. The four
// DNN-workflow applications (Table 4) run at the medium variant on a
// 2-node MIG cluster under a bursty Azure-like trace, side by side under
// ESG (monolithic, state of the art) and FluidFaaS. Prints the Fig. 9 /
// Fig. 10-style comparison.
package main

import (
	"fmt"

	"fluidfaas/internal/experiments"
	"fluidfaas/internal/scheduler"
)

func main() {
	cfg := experiments.DefaultConfig()

	fmt.Println("medium workload, 2 nodes x 8 A100s, partition 4g+2g+1g")
	fmt.Println()

	type row struct {
		name string
		r    experiments.SystemResult
	}
	var rows []row
	for _, pol := range []scheduler.Policy{&scheduler.ESG{}, &scheduler.FluidFaaS{}} {
		rows = append(rows, row{pol.Name(), experiments.RunSystem(pol, experiments.Medium, cfg)})
	}

	fmt.Printf("%-10s  %10s  %8s  %8s  %8s  %10s\n",
		"system", "throughput", "SLO hit", "p50", "p95", "evictions")
	for _, r := range rows {
		fmt.Printf("%-10s  %7.1f/s  %7.1f%%  %6.2fs  %6.2fs  %10d\n",
			r.name, r.r.Throughput, r.r.SLOHit*100,
			r.r.LatencyP50, r.r.LatencyP95, r.r.Evictions)
	}

	fmt.Println("\nper-application SLO hit rates:")
	fmt.Printf("%-32s  %8s  %9s\n", "application", "esg", "fluidfaas")
	for ai := 0; ai < 4; ai++ {
		fmt.Printf("app %-28d  %7.1f%%  %8.1f%%\n", ai,
			rows[0].r.SLOHitByApp[ai]*100, rows[1].r.SLOHitByApp[ai]*100)
	}

	esg, ff := rows[0].r, rows[1].r
	fmt.Printf("\nFluidFaaS vs ESG: %.2fx throughput, %+.0f%% SLO hit rate\n",
		ff.Throughput/esg.Throughput, (ff.SLOHit/esg.SLOHit-1)*100)
	fmt.Printf("breakdown: esg  %s\n", esg.Breakdown)
	fmt.Printf("           ffs  %s\n", ff.Breakdown)
}
