// Llmstages: §5.2.3 notes that FluidFaaS extends beyond CNN workflows to
// LLM inference, whose multi-stage structure (tokenise -> prefill ->
// decode -> detokenise) maps naturally onto MIG fragments. This example
// defines an LLM-serving FluidFaaS function with custom modules and
// compares the monolithic deployment (needs a whole 7g.80gb GPU) against
// the pipeline the invoker builds from fragmented slices.
package main

import (
	"fmt"
	"log"

	"fluidfaas/internal/ffaas"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
)

// llmModule builds a Module with an explicit per-slice profile: time
// scales with (7/gpcs)^alpha above a fixed floor, and stages that do not
// fit a slice's memory are omitted.
func llmModule(name string, memGB, t7 float64, outMB float64) *ffaas.StaticModule {
	exec := map[mig.SliceType]float64{}
	for _, t := range mig.SliceTypes {
		if memGB > float64(t.MemGB()) {
			continue
		}
		scale := 1.0
		switch t {
		case mig.Slice1g:
			scale = 2.6
		case mig.Slice2g:
			scale = 1.8
		case mig.Slice3g:
			scale = 1.5
		case mig.Slice4g:
			scale = 1.3
		}
		exec[t] = t7 * scale
	}
	return &ffaas.StaticModule{ModuleName: name, Mem: memGB, Out: outMB, Exec: exec}
}

// llmServe is a 7B-class chat-completion function: the tokeniser and
// detokeniser are tiny CPU-ish stages, prefill is compute-heavy, decode
// is memory-bandwidth-heavy with the KV cache.
type llmServe struct{}

func (llmServe) Name() string { return "llm-serve-7b" }

func (llmServe) DefDAG(b *ffaas.Builder) {
	tok := b.Reg(llmModule("tokenize", 1.0, 0.002, 0.1), ffaas.Input)
	pre := b.Reg(llmModule("prefill", 16.0, 0.090, 2), tok)
	dec := b.Reg(llmModule("decode", 19.0, 0.140, 2), pre)
	b.Reg(llmModule("detokenize", 1.0, 0.002, 0.05), dec)
}

func main() {
	fn := llmServe{}
	d, profiles, err := ffaas.Profile(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LLM serving stages:")
	total := 0.0
	for _, p := range profiles {
		total += p.MemGB
		fmt.Printf("  %-12s %5.1f GB\n", p.Name, p.MemGB)
	}
	fmt.Printf("  total        %5.1f GB -> monolithic needs a 3g.40gb or larger\n\n", total)

	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		log.Fatal(err)
	}

	// Monolithic on the smallest slice that fits the whole model.
	mono, err := pipeline.Monolithic(d, mig.Slice3g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monolithic on 3g.40gb: latency %.0f ms, throughput %.2f req/s (3 GPCs)\n",
		mono.Latency*1000, mono.Throughput())

	// The cluster is fragmented: only 2g and 1g slices are free.
	free := []mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g}
	plan, idx, err := pipeline.Construct(d, parts, free, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline on fragments: %v\n", plan)
	fmt.Printf("  latency %.0f ms, throughput %.2f req/s (%d GPCs)\n\n",
		plan.Latency*1000, plan.Throughput(), plan.GPCs())

	// Launch and drive the pipeline: decode dominates, so the pipeline
	// streams requests at the decode stage's pace.
	ids := make([]string, len(idx))
	for i, ai := range idx {
		ids[i] = fmt.Sprintf("frag%d/%s", ai, free[ai])
	}
	cfg, err := ffaas.FromPlan(plan, ids)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := ffaas.Launch(fn, cfg, ffaas.LaunchOptions{Preloaded: true})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()

	const n = 16
	chans := make([]<-chan ffaas.Result, n)
	for i := range chans {
		chans[i] = inst.Invoke(0)
	}
	var first, last ffaas.Result
	for i, ch := range chans {
		r := <-ch
		if i == 0 {
			first = r
		}
		last = r
	}
	span := last.Latency - first.Latency
	fmt.Printf("served %d requests: first finished at %.0f ms, last at %.0f ms\n",
		n, first.Latency*1000, last.Latency*1000)
	fmt.Printf("steady-state spacing %.0f ms/request = %.2f req/s through the fragments\n",
		span/float64(n-1)*1000, float64(n-1)/span)
}
