// Custommodel: profile a developer-supplied model with the virtual GPU
// executor and deploy it through the FluidFaaS path. This is the full
// BUILDDAG story of §5.2.1 for a model outside the built-in catalog:
// describe the model as kernels, measure it on every MIG slice profile
// (vgpu's roofline), register it in a FluidFaaS function, and let the
// invoker pick a pipeline for the fragments at hand.
package main

import (
	"fmt"
	"log"

	"fluidfaas/internal/ffaas"
	"fluidfaas/internal/mig"
	"fluidfaas/internal/pipeline"
	"fluidfaas/internal/vgpu"
)

// vgpuModule adapts a vgpu.Model to the ffaas.Module interface.
type vgpuModule struct{ m vgpu.Model }

func (v vgpuModule) Name() string                           { return v.m.Name }
func (v vgpuModule) MemGB() float64                         { return v.m.MemGB() }
func (v vgpuModule) OutMB() float64                         { return v.m.OutMB }
func (v vgpuModule) ExecOn(t mig.SliceType) (float64, bool) { return v.m.ExecOn(t) }

// detector is a two-model video-analytics function: a heavy backbone
// followed by a light tracking head.
type detector struct {
	backbone, head vgpu.Model
}

func (detector) Name() string { return "video-detector" }

func (d detector) DefDAG(b *ffaas.Builder) {
	x := b.Reg(vgpuModule{d.backbone}, ffaas.Input)
	b.Reg(vgpuModule{d.head}, x)
}

func buildModels(batch int) detector {
	var backbone []vgpu.Kernel
	backbone = append(backbone, vgpu.ConvLayer("stem", batch, 208, 208, 3, 64, 7, 7))
	for i := 0; i < 40; i++ {
		backbone = append(backbone, vgpu.ConvLayer("stage", batch, 52, 52, 256, 256, 3, 3))
	}
	var head []vgpu.Kernel
	head = append(head, vgpu.ConvLayer("neck", batch, 26, 26, 256, 128, 3, 3))
	head = append(head, vgpu.MatMulLayer("assoc", batch, 8192, 4096))
	return detector{
		backbone: vgpu.Model{
			Name: "backbone", Kernels: backbone,
			ParamsGB: 3.5, ActivationGB: 1.2 * float64(batch), OutMB: 24,
		},
		head: vgpu.Model{
			Name: "tracking-head", Kernels: head,
			ParamsGB: 2.0, ActivationGB: 0.75 * float64(batch), OutMB: 2,
		},
	}
}

func main() {
	fn := buildModels(8)

	// BUILDDAG: the profiler "runs" each component on every slice.
	d, profiles, err := ffaas.Profile(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vgpu-measured profiles:")
	for _, p := range profiles {
		fmt.Printf("  %-14s %5.1f GB ", p.Name, p.MemGB)
		for _, st := range mig.SliceTypes {
			if et, ok := p.Exec[st]; ok {
				fmt.Printf(" %s:%.1fms", st, et*1000)
			}
		}
		fmt.Println()
	}
	for _, m := range []vgpu.Model{fn.backbone, fn.head} {
		if a, ok := m.EffectiveAlpha(mig.Slice1g, mig.Slice7g); ok {
			fmt.Printf("  %-14s effective scaling exponent alpha = %.2f\n", m.Name, a)
		}
	}

	// The invoker's step, against a fragmented pool.
	parts, err := d.EnumeratePartitions(mig.Slice7g)
	if err != nil {
		log.Fatal(err)
	}
	free := []mig.SliceType{mig.Slice2g, mig.Slice2g, mig.Slice1g}
	plan, _, err := pipeline.Construct(d, parts, free, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployment over fragments: %v\n", plan)
	fmt.Printf("latency %.1f ms, throughput %.2f req/s on %d GPCs\n",
		plan.Latency*1000, plan.Throughput(), plan.GPCs())

	mono, err := pipeline.Monolithic(d, mig.Slice4g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vs monolithic on 4g.40gb: latency %.1f ms, throughput %.2f req/s on 4 GPCs\n",
		mono.Latency*1000, mono.Throughput())
}
